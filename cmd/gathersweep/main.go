// Command gathersweep runs a grid of gathering experiments — the cross
// product of workload families × sizes × parameter sets × schedulers ×
// fault plans × algorithms × seeds — with concurrent simulations, and
// reports aggregated statistics (rounds, rounds/n, merges, moves; mean and
// percentiles) as a table, JSON or CSV.
//
// Usage:
//
//	gathersweep -workloads hollow,line -sizes 100,200,400
//	gathersweep -workloads blob,tree -sizes 200 -seeds 1,2,3,4,5 -format csv
//	gathersweep -sizes 160 -radius 20,11 -L 22,13 -format json -o sweep.json
//	gathersweep -workloads hollow -sizes 2000 -engine-workers 0 -v
//	gathersweep -sizes 100 -scheduler fsync,ssync,async:4 -algorithms greedy
//	gathersweep -sizes 100 -scheduler ssync -algorithms paper,greedy
//	gathersweep -sizes 100 -faults "off;crash:p=0.001;crash-at:r=50,k=8" -algorithms greedy
//
// -scheduler sweeps the time model (FSYNC/SSYNC/ASYNC; see internal/sched)
// and -algorithms the robot program: "paper" is the reproduction, proved
// for FSYNC only — under relaxed schedulers its failures (disconnections)
// are themselves the measurement — while "greedy" stays safe under every
// scheduler.
//
// -faults sweeps the fault-injection axis (internal/fault): a
// semicolon-separated list of plans, each a "+"-joined set of clauses
// (clauses contain commas, hence the semicolon separator). Faulty runs
// gather their surviving robots — degraded runs are reported in the "degr"
// column, crash counts in the raw outputs.
//
// -jobs controls how many simulations run concurrently (default: enough to
// keep all CPUs busy — when -engine-workers parallelizes inside each
// simulation too, the job-level default scales down so the product of the
// two stays at the CPU count); -engine-workers parallelizes the compute
// phase inside each simulation (0 = all CPUs, useful for a few huge
// instances). Every simulation is deterministic, so sweep outputs are
// reproducible.
//
// Each worker in the sweep's pool drives its jobs as public gridgather
// sessions (gridgather.New + Run) — the sweep harness consumes the same
// Simulation surface as every other client, so budgets, seed semantics and
// scenario resolution cannot drift between the sweep and the API.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gridgather/internal/core"
	"gridgather/internal/fault"
	"gridgather/internal/sched"
	"gridgather/internal/sweep"
)

func main() {
	var (
		workloads  = flag.String("workloads", "", "comma-separated workload families (default: all; have: "+strings.Join(sweep.Families(), ", ")+")")
		sizes      = flag.String("sizes", "100,200,400", "comma-separated robot counts")
		seeds      = flag.String("seeds", "42", "comma-separated seeds for randomized families and schedulers")
		radii      = flag.String("radius", "20", "comma-separated viewing radii")
		ls         = flag.String("L", "22", "comma-separated run start periods")
		schedulers = flag.String("scheduler", "fsync", "comma-separated time models (grammar: "+strings.Join(sched.Specs(), ", ")+")")
		algorithms = flag.String("algorithms", "paper", "comma-separated robot programs (have: "+strings.Join(sweep.Algorithms(), ", ")+")")
		faults     = flag.String("faults", "", "semicolon-separated fault plans, each \"+\"-joined clauses of: "+strings.Join(fault.Specs(), ", ")+" (empty = fault-free)")
		jobs       = flag.Int("jobs", 0, "concurrent simulations (0 = auto: all CPUs divided by engine workers)")
		engineW    = flag.Int("engine-workers", 1, "compute workers inside each engine (0 = all CPUs)")
		format     = flag.String("format", "table", "output format: table, json, csv")
		raw        = flag.Bool("raw", false, "emit per-run results instead of aggregates (csv/json)")
		out        = flag.String("o", "", "write output to file instead of stdout")
		verbose    = flag.Bool("v", false, "print per-run progress to stderr")
	)
	flag.Parse()

	if *engineW == 0 {
		// Job.EngineWorkers treats 0 as 1 (job-level concurrency is the
		// default parallelism axis), so resolve the CLI's "0 = all CPUs"
		// promise here.
		*engineW = runtime.GOMAXPROCS(0)
	}
	if *jobs == 0 && *engineW > 1 {
		// Keep jobs × engine workers ≈ GOMAXPROCS: with both defaults at
		// "all CPUs" the sweep used to oversubscribe quadratically.
		*jobs = max(1, runtime.GOMAXPROCS(0) / *engineW)
	}
	spec := sweep.Spec{
		Sizes:         parseInts(*sizes),
		Seeds:         parseInt64s(*seeds),
		Schedulers:    splitList(*schedulers),
		Algorithms:    splitList(*algorithms),
		Faults:        splitSemiList(*faults),
		EngineWorkers: *engineW,
	}
	spec.Workloads = splitList(*workloads)
	for _, r := range parseInts(*radii) {
		for _, l := range parseInts(*ls) {
			spec.Params = append(spec.Params, core.WithConstants(r, l))
		}
	}

	switch *format {
	case "table", "json", "csv":
	default:
		// Reject up front: a long sweep should not run before a format
		// typo is noticed.
		fmt.Fprintf(os.Stderr, "unknown format %q (have table, json, csv)\n", *format)
		os.Exit(2)
	}
	jobList, err := spec.Jobs()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runner := sweep.Runner{Concurrency: *jobs}
	if *verbose {
		done := 0
		runner.OnResult = func(r sweep.Result) {
			done++
			status := fmt.Sprintf("rounds=%d", r.Rounds)
			if r.Err != "" {
				status = "ERR " + r.Err
			}
			faultTag := ""
			if r.Job.Faults != "" {
				faultTag = " faults=" + r.Job.Faults
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d seed=%d R=%d L=%d sched=%s alg=%s%s: %s (%.0fms)\n",
				done, len(jobList), r.Job.Workload, r.Job.N, r.Job.Seed,
				r.Job.Params.Radius, r.Job.Params.L,
				r.Job.Scheduler, r.Job.Algorithm, faultTag, status,
				float64(r.Duration.Microseconds())/1000)
		}
	}
	results := runner.Run(jobList)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := emit(w, *format, *raw, results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// emit writes the results in the requested format.
func emit(w io.Writer, format string, raw bool, results []sweep.Result) error {
	switch format {
	case "table":
		_, err := io.WriteString(w, sweep.Table(sweep.Aggregated(results)))
		return err
	case "json":
		if raw {
			return sweep.WriteJSON(w, results)
		}
		return sweep.WriteJSON(w, sweep.NewReport(results))
	case "csv":
		if raw {
			return sweep.WriteResultsCSV(w, results)
		}
		return sweep.WriteAggregatesCSV(w, sweep.Aggregated(results))
	default:
		return fmt.Errorf("unknown format %q (have table, json, csv)", format)
	}
}

// parseInts parses a comma-separated integer list, exiting on bad input.
func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// parseInt64s parses a comma-separated int64 list, exiting on bad input.
// Seeds are parsed as full 64-bit values directly — routing them through
// int (as parseInts does) would truncate or reject 64-bit seeds on 32-bit
// platforms.
func parseInt64s(s string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitSemiList splits a semicolon-separated flag value, dropping empty
// entries — fault plans contain commas ("crash-at:r=50,k=8"), so the
// -faults list cannot reuse the comma separator. "off" entries survive (a
// fault-free arm of a faults sweep is meaningful), only blanks are dropped.
func splitSemiList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
