package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles gatherlint once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gatherlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building gatherlint: %v\n%s", err, out)
	}
	return bin
}

func runVet(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s in %s: %v\n%s", bin, dir, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestSmokeCleanFixture runs the full vet pipeline (standalone mode
// re-execs `go vet -vettool=<self>`) over a fixture that opts into every
// contract and violates none: zero diagnostics, zero exit.
func TestSmokeCleanFixture(t *testing.T) {
	bin := buildTool(t)
	out, code := runVet(t, bin, "testdata/cleanmod", "./...")
	if code != 0 {
		t.Fatalf("clean fixture failed (exit %d):\n%s", code, out)
	}
	if strings.Contains(out, ".go:") {
		t.Fatalf("clean fixture produced diagnostics:\n%s", out)
	}
}

// TestSmokeDirtyFixture proves the pipeline bites: a seeded map-range in a
// deterministic package must surface through go vet and fail the run.
func TestSmokeDirtyFixture(t *testing.T) {
	bin := buildTool(t)
	out, code := runVet(t, bin, "testdata/dirtymod", "./...")
	if code == 0 {
		t.Fatalf("dirty fixture passed; want detlint failure:\n%s", out)
	}
	if !strings.Contains(out, "map iteration order is nondeterministic") {
		t.Fatalf("dirty fixture failed without the expected diagnostic:\n%s", out)
	}
}

// TestProbeProtocol covers the two cmd/go probes the vettool contract
// requires: -flags must print a JSON flag array, -V=full a version line
// with a build ID for vet's action cache.
func TestProbeProtocol(t *testing.T) {
	bin := buildTool(t)
	out, code := runVet(t, bin, ".", "-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Fatalf("-flags: exit %d, output %q; want 0, []", code, out)
	}
	out, code = runVet(t, bin, ".", "-V=full")
	if code != 0 || !strings.HasPrefix(out, "gatherlint version ") || !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full: exit %d, output %q", code, out)
	}
}
