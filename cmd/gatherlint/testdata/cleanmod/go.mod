module cleanfixture

go 1.24
