// Package cleanfixture opts into every gatherlint contract and violates
// none of them: the smoke test's known-clean baseline.
//
//gather:deterministic
package cleanfixture

import "sort"

// Grid is a tiny lane-protocol shape.
type Grid struct {
	serial int
	//gather:lane-owned
	Clocks []int
}

// TickShard writes only lane-owned state.
func (g *Grid) TickShard(ln int) {
	g.Clocks[ln]++
}

// Reset is serial-phase code; no Shard suffix, no constraints.
func (g *Grid) Reset() {
	g.serial = 0
	sort.Ints(g.Clocks)
}

//gather:hotpath
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
