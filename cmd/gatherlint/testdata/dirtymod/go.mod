module dirtyfixture

go 1.24
