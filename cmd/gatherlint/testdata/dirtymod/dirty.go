// Package dirtyfixture seeds one detlint violation so the smoke test can
// prove the vet pipeline surfaces diagnostics and fails the build.
//
//gather:deterministic
package dirtyfixture

// SumMap iterates a map in a deterministic package.
func SumMap(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
