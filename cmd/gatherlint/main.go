// gatherlint is the repo's static-analysis multichecker: detlint, hotalloc,
// codecpair, and lanesafe over every package, wired into `go vet`.
//
// Usage:
//
//	go vet -vettool=$(which gatherlint) ./...   # the normal CI invocation
//	gatherlint ./...                            # standalone: re-execs go vet
//	gatherlint path/to/unit.cfg                 # one vet unit (cmd/go calls this)
//
// As a vettool, cmd/go drives gatherlint through the unitchecker protocol
// implemented by internal/analysis/unit: a -flags probe, a -V=full version
// probe whose build ID keys vet's action cache, then one JSON config per
// package. Standalone mode is a convenience that re-executes
// `go vet -vettool=<self>` so developers get identical behavior and
// caching either way.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"gridgather/internal/analysis/suite"
	"gridgather/internal/analysis/unit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go's probes come first and must not reach flag parsing errors.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			unit.PrintFlags(os.Stdout)
			return 0
		case strings.HasPrefix(args[0], "-V"):
			unit.PrintVersion(os.Stdout, "gatherlint", buildID())
			return 0
		}
	}

	fs := flag.NewFlagSet("gatherlint", flag.ContinueOnError)
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 1
	}
	rest := fs.Args()
	if len(rest) == 0 {
		usage()
		return 1
	}

	// A single existing *.cfg argument is a vet unit from cmd/go.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		n, err := unit.Run(rest[0], suite.Analyzers, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gatherlint: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	// Standalone: hand the package patterns to go vet with ourselves as
	// the tool, inheriting its loading, caching, and diagnostics plumbing.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gatherlint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, rest...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "gatherlint: %v\n", err)
		return 1
	}
	return 0
}

// buildID hashes the executable so vet's action cache invalidates when the
// tool changes. Probes must still answer if the binary is unreadable (e.g.
// deleted underfoot); a constant ID only costs cache hits.
func buildID() string {
	self, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(self)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func usage() {
	fmt.Fprint(os.Stderr, `gatherlint: gridgather's static-analysis suite

usage:
  gatherlint ./...                       run the suite over packages
  go vet -vettool=$(which gatherlint) ./...   equivalent, explicit form

analyzers: detlint, hotalloc, codecpair, lanesafe (see internal/analysis).
`)
}
