// Command gatherbench regenerates the experiment tables of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	gatherbench            # run the full suite
//	gatherbench -exp e2    # run one experiment
//	gatherbench -jobs 4    # cap concurrent simulations at 4
//
// Experiments that batch many independent simulations (E1, E18, E21) fan
// them out through the sweep runner (internal/sweep); -jobs bounds that
// concurrency (0 = all CPUs). For parameterized grids beyond the recorded
// experiment suite, use cmd/gathersweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridgather/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all, e1, e1b, e2, e3, e15, e18, e20, e21")
	jobs := flag.Int("jobs", 0, "concurrent simulations for batched experiments (0 = all CPUs)")
	flag.Parse()
	exp.Concurrency = *jobs

	w := os.Stdout
	switch *which {
	case "all":
		exp.All(w)
	case "e1":
		exp.E1GridScaling(w, exp.Sizes)
	case "e1b":
		exp.E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	case "e2":
		exp.E2PlaneComparison(w, exp.PlaneSizes)
	case "e3":
		exp.E3AsyncBaseline(w, []int{100, 300})
	case "e15":
		exp.E15Pipelining(w, 56)
	case "e18":
		exp.E18Ablation(w, 160)
	case "e20":
		exp.E20LowerBound(w, []int{50, 100, 200, 400})
	case "e21":
		exp.E21Movements(w, []int{160})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
