// Command gatherbench regenerates the experiment tables of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded outputs) and measures the engine's per-round performance.
//
// Usage:
//
//	gatherbench                         # run the full experiment suite
//	gatherbench -exp e2                 # run one experiment
//	gatherbench -jobs 4                 # cap concurrent simulations at 4
//	gatherbench -bench-json BENCH_engine.json
//	                                    # measure Engine.Step per workload
//	                                    # and backend, write bench JSON
//	gatherbench -bench-json out.json -bench-n 512 -bench-rounds 60 \
//	            -bench-gather=false -bench-guard
//	                                    # CI smoke: quick measurement plus
//	                                    # the dense-vs-map regression guard
//
// Experiments that batch many independent simulations (E1, E18, E21) fan
// them out through the sweep runner (internal/sweep); -jobs bounds that
// concurrency (0 = all CPUs). For parameterized grids beyond the recorded
// experiment suite, use cmd/gathersweep.
//
// -bench-json runs the internal/perf harness over the acceptance
// workloads (hollow, solid, line, blob) on both world backends, prints
// the table, and writes the JSON to the given path. The committed
// BENCH_engine.json at the repo root is the performance baseline —
// regenerate it with the default flags on a quiet machine. -bench-guard
// exits non-zero if the dense backend measured slower than the map
// oracle on any workload.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridgather/internal/exp"
	"gridgather/internal/perf"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all, e1, e1b, e2, e3, e15, e18, e20, e21")
	jobs := flag.Int("jobs", 0, "concurrent simulations for batched experiments (0 = all CPUs)")
	benchJSON := flag.String("bench-json", "", "measure Engine.Step per workload/backend and write bench JSON to this path (skips the experiments)")
	benchN := flag.Int("bench-n", 2048, "approximate robot count for -bench-json workloads")
	benchRounds := flag.Int("bench-rounds", 150, "measured rounds per -bench-json cell")
	benchGather := flag.Bool("bench-gather", true, "also record full-simulation gather rounds per workload in -bench-json")
	benchGuard := flag.Bool("bench-guard", false, "exit non-zero if the dense backend is slower than the map oracle")
	flag.Parse()
	exp.Concurrency = *jobs

	w := os.Stdout
	if *benchJSON != "" {
		rep, err := perf.Run(perf.Config{
			N:             *benchN,
			MeasureRounds: *benchRounds,
			Gather:        *benchGather,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteTable(w, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteJSON(rep, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *benchJSON)
		if *benchGuard {
			if err := perf.Guard(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(w, "regression guard: dense ≤ map on every workload")
		}
		return
	}
	switch *which {
	case "all":
		exp.All(w)
	case "e1":
		exp.E1GridScaling(w, exp.Sizes)
	case "e1b":
		exp.E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	case "e2":
		exp.E2PlaneComparison(w, exp.PlaneSizes)
	case "e3":
		exp.E3AsyncBaseline(w, []int{100, 300})
	case "e15":
		exp.E15Pipelining(w, 56)
	case "e18":
		exp.E18Ablation(w, 160)
	case "e20":
		exp.E20LowerBound(w, []int{50, 100, 200, 400})
	case "e21":
		exp.E21Movements(w, []int{160})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
