// Command gatherbench regenerates the experiment tables of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded outputs) and measures the engine's per-round performance.
//
// Usage:
//
//	gatherbench                         # run the full experiment suite
//	gatherbench -exp e2                 # run one experiment
//	gatherbench -jobs 4                 # cap concurrent simulations at 4
//	gatherbench -bench-json BENCH_engine.json -bench-workers 1,2,4,8
//	                                    # measure Engine.Step per workload
//	                                    # and worker count, write bench JSON
//	gatherbench -bench-json out.json -bench-n 512 -bench-rounds 60 \
//	            -bench-gather=false -bench-workers 1,4 -bench-guard
//	                                    # CI smoke: quick measurement plus
//	                                    # the serial-vs-parallel regression
//	                                    # guard
//
// Experiments that batch many independent simulations (E1, E18, E21) fan
// them out through the sweep runner (internal/sweep); -jobs bounds that
// concurrency (0 = all CPUs). For parameterized grids beyond the recorded
// experiment suite, use cmd/gathersweep.
//
// -bench-json runs the internal/perf harness over the acceptance
// workloads (hollow, solid, line, blob) for every -bench-workers count and
// every -bench-ns size, prints the table, and writes the JSON to the given
// path. -bench-conn adds the connectivity-check microbench (incremental
// layer vs full scratch BFS on sparse-movement rounds); -bench-quiesce
// measures every cell under both quiescence modes (the dirty-region fast
// path vs pinned full recomputation — the on/off ratio is the quiescence
// layer's headline); -bench-repeats keeps the fastest of several repeats
// per cell, which is what lets the tight regression guard hold on noisy
// machines. The committed BENCH_engine.json at the repo root is the
// performance baseline — regenerate it with `-bench-ns 16384,131072
// -bench-conn -bench-quiesce -bench-repeats 3 -bench-workers 1,4
// -bench-gather=false` on a quiet machine. -bench-guard exits non-zero if
// the parallel pipeline measured slower than the serial path on any
// (workload, n, quiesce mode) beyond perf.GuardTolerance.
//
// -cpuprofile and -memprofile write standard pprof profiles of the whole
// run (experiments or bench alike) for use with `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"gridgather/internal/exp"
	"gridgather/internal/perf"
)

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(flagName, spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad %s entry %q (want positive integers)", flagName, f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	which := flag.String("exp", "all", "experiment to run: all, e1, e1b, e2, e3, e15, e18, e20, e21")
	jobs := flag.Int("jobs", 0, "concurrent simulations for batched experiments (0 = all CPUs)")
	benchJSON := flag.String("bench-json", "", "measure Engine.Step per workload/backend and write bench JSON to this path (skips the experiments)")
	benchN := flag.Int("bench-n", 2048, "approximate robot count for -bench-json workloads")
	benchNs := flag.String("bench-ns", "", "comma-separated robot-count grid for -bench-json (overrides -bench-n)")
	benchRounds := flag.Int("bench-rounds", 150, "measured rounds per -bench-json cell")
	benchWarmup := flag.Int("bench-warmup", 30, "warmup rounds per -bench-json cell before measurement")
	benchRepeats := flag.Int("bench-repeats", 1, "repeat each -bench-json cell this many times and keep the fastest (noise filter)")
	benchGather := flag.Bool("bench-gather", true, "also record full-simulation gather rounds per workload in -bench-json")
	benchWorkers := flag.String("bench-workers", "1", "comma-separated worker counts to measure per -bench-json workload")
	benchWorkloads := flag.String("bench-workloads", "", "comma-separated workload names for -bench-json (default hollow,solid,line,blob; large-n runs should pick compact shapes — hollow/line tile memory grows with the perimeter)")
	benchConn := flag.Bool("bench-conn", false, "also measure the connectivity check (incremental vs full BFS) per workload/n")
	benchQuiesce := flag.Bool("bench-quiesce", false, "measure each -bench-json cell under both quiescence modes (fast path vs full recompute)")
	benchGuard := flag.Bool("bench-guard", false, "exit non-zero if the parallel pipeline is slower than the serial path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run (experiments or bench) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	flag.Parse()
	exp.Concurrency = *jobs

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	w := os.Stdout
	if *benchJSON != "" {
		workers, err := parseIntList("-bench-workers", *benchWorkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ns, err := parseIntList("-bench-ns", *benchNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var workloads []string
		if strings.TrimSpace(*benchWorkloads) != "" {
			for _, f := range strings.Split(*benchWorkloads, ",") {
				workloads = append(workloads, strings.TrimSpace(f))
			}
		}
		rep, err := perf.Run(perf.Config{
			N:             *benchN,
			Ns:            ns,
			Workloads:     workloads,
			MeasureRounds: *benchRounds,
			WarmupRounds:  *benchWarmup,
			Repeats:       *benchRepeats,
			Workers:       workers,
			Gather:        *benchGather,
			ConnCheck:     *benchConn,
			Quiesce:       *benchQuiesce,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteTable(w, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteJSON(rep, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *benchJSON)
		if *benchGuard {
			if err := perf.Guard(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(w, "regression guard: parallel ≤ serial on every workload")
		}
		return
	}
	switch *which {
	case "all":
		exp.All(w)
	case "e1":
		exp.E1GridScaling(w, exp.Sizes)
	case "e1b":
		exp.E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	case "e2":
		exp.E2PlaneComparison(w, exp.PlaneSizes)
	case "e3":
		exp.E3AsyncBaseline(w, []int{100, 300})
	case "e15":
		exp.E15Pipelining(w, 56)
	case "e18":
		exp.E18Ablation(w, 160)
	case "e20":
		exp.E20LowerBound(w, []int{50, 100, 200, 400})
	case "e21":
		exp.E21Movements(w, []int{160})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
