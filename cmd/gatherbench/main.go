// Command gatherbench regenerates the experiment tables of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	gatherbench            # run the full suite
//	gatherbench -exp e2    # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"gridgather/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all, e1, e1b, e2, e3, e15, e18, e20")
	flag.Parse()

	w := os.Stdout
	switch *which {
	case "all":
		exp.All(w)
	case "e1":
		exp.E1GridScaling(w, exp.Sizes)
	case "e1b":
		exp.E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	case "e2":
		exp.E2PlaneComparison(w, exp.PlaneSizes)
	case "e3":
		exp.E3AsyncBaseline(w, []int{100, 300})
	case "e15":
		exp.E15Pipelining(w, 56)
	case "e18":
		exp.E18Ablation(w, 160)
	case "e20":
		exp.E20LowerBound(w, []int{50, 100, 200, 400})
	case "e21":
		exp.E21Movements(w, []int{160})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
