// Command gatherbench regenerates the experiment tables of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded outputs) and measures the engine's per-round performance.
//
// Usage:
//
//	gatherbench                         # run the full experiment suite
//	gatherbench -exp e2                 # run one experiment
//	gatherbench -jobs 4                 # cap concurrent simulations at 4
//	gatherbench -bench-json BENCH_engine.json -bench-workers 1,2,4,8
//	                                    # measure Engine.Step per workload
//	                                    # and worker count, write bench JSON
//	gatherbench -bench-json out.json -bench-n 512 -bench-rounds 60 \
//	            -bench-gather=false -bench-workers 1,4 -bench-guard
//	                                    # CI smoke: quick measurement plus
//	                                    # the serial-vs-parallel regression
//	                                    # guard
//
// Experiments that batch many independent simulations (E1, E18, E21) fan
// them out through the sweep runner (internal/sweep); -jobs bounds that
// concurrency (0 = all CPUs). For parameterized grids beyond the recorded
// experiment suite, use cmd/gathersweep.
//
// -bench-json runs the internal/perf harness over the acceptance
// workloads (hollow, solid, line, blob) for every -bench-workers count,
// prints the table, and writes the JSON to the given path. The committed
// BENCH_engine.json at the repo root is the performance baseline —
// regenerate it with the default flags on a quiet machine. -bench-guard
// exits non-zero if the parallel pipeline measured slower than the serial
// path on any workload (beyond perf.GuardTolerance).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gridgather/internal/exp"
	"gridgather/internal/perf"
)

// parseWorkers parses the -bench-workers comma-separated list.
func parseWorkers(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -bench-workers entry %q (want positive integers)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	which := flag.String("exp", "all", "experiment to run: all, e1, e1b, e2, e3, e15, e18, e20, e21")
	jobs := flag.Int("jobs", 0, "concurrent simulations for batched experiments (0 = all CPUs)")
	benchJSON := flag.String("bench-json", "", "measure Engine.Step per workload/backend and write bench JSON to this path (skips the experiments)")
	benchN := flag.Int("bench-n", 2048, "approximate robot count for -bench-json workloads")
	benchRounds := flag.Int("bench-rounds", 150, "measured rounds per -bench-json cell")
	benchGather := flag.Bool("bench-gather", true, "also record full-simulation gather rounds per workload in -bench-json")
	benchWorkers := flag.String("bench-workers", "1", "comma-separated worker counts to measure per -bench-json workload")
	benchGuard := flag.Bool("bench-guard", false, "exit non-zero if the parallel pipeline is slower than the serial path")
	flag.Parse()
	exp.Concurrency = *jobs

	w := os.Stdout
	if *benchJSON != "" {
		workers, err := parseWorkers(*benchWorkers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		rep, err := perf.Run(perf.Config{
			N:             *benchN,
			MeasureRounds: *benchRounds,
			Workers:       workers,
			Gather:        *benchGather,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteTable(w, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := perf.WriteJSON(rep, *benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *benchJSON)
		if *benchGuard {
			if err := perf.Guard(rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintln(w, "regression guard: parallel ≤ serial on every workload")
		}
		return
	}
	switch *which {
	case "all":
		exp.All(w)
	case "e1":
		exp.E1GridScaling(w, exp.Sizes)
	case "e1b":
		exp.E1bHollowDetail(w, []int{25, 41, 61, 81, 121})
	case "e2":
		exp.E2PlaneComparison(w, exp.PlaneSizes)
	case "e3":
		exp.E3AsyncBaseline(w, []int{100, 300})
	case "e15":
		exp.E15Pipelining(w, 56)
	case "e18":
		exp.E18Ablation(w, 160)
	case "e20":
		exp.E20LowerBound(w, []int{50, 100, 200, 400})
	case "e21":
		exp.E21Movements(w, []int{160})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
