// Command gatherviz animates a gathering run as ASCII frames, making the
// merge waves and the runner pipeline of the paper visible. It observes a
// public Simulation session through the typed event API — frames are built
// inside the round-event callback from the borrowed event payload.
//
// Usage:
//
//	gatherviz -workload hollow -n 120 -every 4
//	gatherviz -workload hollow -n 120 -live       # redraw in place
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridgather"
	"gridgather/internal/grid"
	"gridgather/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "hollow", "workload family")
		n        = flag.Int("n", 120, "approximate robot count")
		every    = flag.Int("every", 2, "capture every k-th round")
		live     = flag.Bool("live", false, "animate in place with ANSI clear codes")
		delay    = flag.Duration("delay", 60*time.Millisecond, "frame delay in -live mode")
	)
	flag.Parse()
	if *every < 1 {
		*every = 1
	}

	cells, err := gridgather.Workload(*workload, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (have %s)\n", err, strings.Join(gridgather.Workloads(), ", "))
		os.Exit(2)
	}
	viewport := boundsOf(cells)

	var frames []trace.Frame
	frames = append(frames, trace.FrameOf(0, toGrid(cells), nil, 0, viewport))
	sim, err := gridgather.New(cells,
		gridgather.WithObserver(gridgather.RoundEvents|gridgather.GatheredEvents, func(ev gridgather.Event) {
			if ev.Kind == gridgather.EventRound && ev.Round%*every != 0 {
				return
			}
			if len(frames) > 0 && frames[len(frames)-1].Round == ev.Round {
				return // the gathered event follows the final round event
			}
			frames = append(frames, trace.FrameOf(ev.Round, toGrid(ev.Robots), toGrid(ev.Runners), ev.Merges, viewport))
		}))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res := sim.Run(context.Background())
	if res.Err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", res.Err)
		os.Exit(1)
	}

	if *live {
		for _, f := range frames {
			fmt.Print("\033[H\033[2J")
			fmt.Printf("round %d | robots %d | merges %d | runners %d\n%s",
				f.Round, f.Robots, f.Merges, f.Runners, f.Art)
			time.Sleep(*delay)
		}
	} else {
		for _, f := range frames {
			fmt.Printf("--- round %d | robots %d | merges %d | runners %d ---\n%s\n",
				f.Round, f.Robots, f.Merges, f.Runners, f.Art)
		}
	}
	fmt.Printf("gathered in %d rounds (%d merges, %d runs)\n",
		res.Rounds, res.Merges, res.RunsStarted)
}

// toGrid converts borrowed public event points into grid points (copying —
// the event payload must not be retained past the callback).
func toGrid(pts []gridgather.Point) []grid.Point {
	out := make([]grid.Point, len(pts))
	for i, p := range pts {
		out[i] = grid.Pt(p.X, p.Y)
	}
	return out
}

func boundsOf(cells []gridgather.Point) grid.Rect {
	r := grid.EmptyRect
	for _, c := range cells {
		r = r.Include(grid.Pt(c.X, c.Y))
	}
	return r
}
