// Command gatherviz animates a gathering run as ASCII frames, making the
// merge waves and the runner pipeline of the paper visible.
//
// Usage:
//
//	gatherviz -workload hollow -n 120 -every 4
//	gatherviz -workload hollow -n 120 -live       # redraw in place
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/gen"
	"gridgather/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "hollow", "workload family")
		n        = flag.Int("n", 120, "approximate robot count")
		every    = flag.Int("every", 2, "capture every k-th round")
		live     = flag.Bool("live", false, "animate in place with ANSI clear codes")
		delay    = flag.Duration("delay", 60*time.Millisecond, "frame delay in -live mode")
	)
	flag.Parse()

	var found bool
	for _, w := range gen.Catalog() {
		if w.Name == *workload {
			s := w.Build(*n)
			rec := trace.NewRecorder(*every, s.Bounds())
			g := core.Default()
			budget := fsync.DefaultBudget(s.Len())
			eng := fsync.New(s, g, fsync.Config{
				MaxRounds:    budget.MaxRounds,
				NoMergeLimit: budget.NoMergeLimit,
				OnRound:      rec.Hook(),
			})
			rec.Snapshot(eng)
			res := eng.Run()
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "simulation failed: %v\n", res.Err)
				os.Exit(1)
			}
			if *live {
				for _, f := range rec.Frames {
					fmt.Print("\033[H\033[2J")
					fmt.Printf("round %d | robots %d | merges %d | runners %d\n%s",
						f.Round, f.Robots, f.Merges, f.Runners, f.Art)
					time.Sleep(*delay)
				}
			} else if err := rec.Play(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("gathered in %d rounds (%d merges, %d runs)\n",
				res.Rounds, res.Merges, res.RunsStarted)
			found = true
			break
		}
	}
	if !found {
		names := []string{}
		for _, w := range gen.Catalog() {
			names = append(names, w.Name)
		}
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n", *workload, strings.Join(names, ", "))
		os.Exit(2)
	}
}
