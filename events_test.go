package gridgather

import (
	"testing"
)

// newEventTestSim builds a small simulation that takes several rounds to
// gather, for exercising the subscription machinery round by round.
func newEventTestSim(t *testing.T) *Simulation {
	t.Helper()
	cells, err := Workload("hollow", 40)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cells)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestCancelOwnSubscriptionDuringEmit is the safety bar for gatherd's
// slow-consumer eviction, which cancels a subscription from inside that
// subscription's own callback while an emit is iterating the subscriber
// list. The cancelled subscription must still complete the in-flight
// delivery, other subscribers must each receive the event exactly once,
// and no later event may reach the cancelled callback.
func TestCancelOwnSubscriptionDuringEmit(t *testing.T) {
	sim := newEventTestSim(t)

	var before, self, after int
	sim.Subscribe(RoundEvents, func(Event) { before++ })
	var cancelSelf func()
	cancelSelf = sim.Subscribe(RoundEvents, func(Event) {
		self++
		cancelSelf() // evict ourselves mid-delivery, exactly like the server does
		cancelSelf() // double-cancel from inside the callback must be harmless
	})
	sim.Subscribe(RoundEvents, func(Event) { after++ })

	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if before != 1 || self != 1 || after != 1 {
		t.Fatalf("round 1 deliveries: before=%d self=%d after=%d, want 1/1/1", before, self, after)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if before != 2 || after != 2 {
		t.Errorf("round 2: surviving subscribers got before=%d after=%d, want 2/2", before, after)
	}
	if self != 1 {
		t.Errorf("cancelled subscriber delivered %d times, want exactly 1", self)
	}
	// The swept slot must not confuse later subscriptions.
	var late int
	sim.Subscribe(RoundEvents, func(Event) { late++ })
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if late != 1 || before != 3 || after != 3 {
		t.Errorf("round 3: late=%d before=%d after=%d, want 1/3/3", late, before, after)
	}
}

// TestCancelLaterSubscriptionDuringEmit pins the documented in-flight
// semantics: a cancellation issued from inside a callback takes effect for
// the remainder of the current delivery, so a not-yet-visited subscriber
// cancelled mid-emit never sees the in-flight event.
func TestCancelLaterSubscriptionDuringEmit(t *testing.T) {
	sim := newEventTestSim(t)

	var victim int
	var cancelVictim func()
	sim.Subscribe(RoundEvents, func(Event) {
		cancelVictim()
	})
	cancelVictim = sim.Subscribe(RoundEvents, func(Event) { victim++ })

	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if victim != 0 {
		t.Errorf("subscriber cancelled before its turn was delivered %d times, want 0", victim)
	}
}

// TestCancelEarlierSubscriptionDuringEmit: cancelling a subscriber that
// already ran this delivery must not disturb the rest of the iteration or
// double-deliver to anyone.
func TestCancelEarlierSubscriptionDuringEmit(t *testing.T) {
	sim := newEventTestSim(t)

	var first, last int
	cancelFirst := sim.Subscribe(RoundEvents, func(Event) { first++ })
	sim.Subscribe(RoundEvents, func(Event) {
		cancelFirst()
	})
	sim.Subscribe(RoundEvents, func(Event) { last++ })

	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 1 {
		t.Fatalf("round 1: first=%d last=%d, want 1/1", first, last)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Errorf("cancelled-after-delivery subscriber got %d events, want 1", first)
	}
	if last != 2 {
		t.Errorf("surviving subscriber got %d events, want 2", last)
	}
}

// TestSubscribeDuringEmit: a subscription added from inside a callback
// must not receive the event already being delivered (the emit loop's
// bounds were fixed when the delivery started) but receives later ones.
func TestSubscribeDuringEmit(t *testing.T) {
	sim := newEventTestSim(t)

	var nested int
	var once bool
	sim.Subscribe(RoundEvents, func(Event) {
		if !once {
			once = true
			sim.Subscribe(RoundEvents, func(Event) { nested++ })
		}
	})
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if nested != 0 {
		t.Errorf("subscriber added mid-emit saw the in-flight event (%d deliveries)", nested)
	}
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if nested != 1 {
		t.Errorf("subscriber added mid-emit got %d later events, want 1", nested)
	}
}

// TestCancelChurnDuringEmitDoesNotLeak: repeated subscribe/cancel-inside-
// callback cycles must not grow the subscriber slices without bound (the
// deferred compaction has to sweep the dead entries once the emit ends).
func TestCancelChurnDuringEmitDoesNotLeak(t *testing.T) {
	cells, err := Workload("hollow", 200) // enough rounds for 64 churn cycles
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		var cancel func()
		cancel = sim.Subscribe(RoundEvents, func(Event) { cancel() })
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(sim.subs); n > 1 {
		t.Errorf("subscriber slice holds %d entries after churn, want ≤1 (compaction leak)", n)
	}
}
