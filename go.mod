module gridgather

go 1.24
