// Comparison: the headline claim of the paper. The same robot model
// (local vision, no compass, FSYNC) gathers in O(n) rounds on the grid
// (this paper) but needs Θ(n²) rounds in the Euclidean plane with the best
// previously known local algorithm, go-to-center [DKL+11].
//
// The grid instance is a hollow ring of n robots; the plane instance is a
// circle of n robots at unit spacing — the configuration family on which
// go-to-center's progress per round is the chord sagitta Θ(1/n).
//
//	go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"

	"gridgather"
	"gridgather/internal/baseline/gtc"
)

func main() {
	fmt.Println("rounds to gather, same local FSYNC robot model:")
	fmt.Printf("%6s  %12s  %16s  %8s\n", "n", "grid (paper)", "plane [DKL+11]", "ratio")

	for _, n := range []int{48, 96, 192, 384} {
		// Grid: the paper's algorithm on a ring of ~n robots, driven as a
		// session.
		cells, err := gridgather.Workload("hollow", n)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := gridgather.New(cells)
		if err != nil {
			log.Fatal(err)
		}
		grid := sim.Run(context.Background())
		if grid.Err != nil {
			log.Fatal(grid.Err)
		}

		// Plane: go-to-center on a circle of exactly as many robots.
		planeSim := gtc.NewSim(gtc.CircleInstance(grid.InitialRobots, 1.0), gtc.DefaultParams())
		plane := planeSim.Run(2_000_000)
		if plane.Err != nil {
			log.Fatal(plane.Err)
		}

		ratio := float64(plane.Rounds) / float64(max(1, grid.Rounds))
		fmt.Printf("%6d  %12d  %16d  %8.1f\n",
			grid.InitialRobots, grid.Rounds, plane.Rounds, ratio)
	}
	fmt.Println("\nper doubling of n the grid column roughly doubles (O(n)) while the")
	fmt.Println("plane column roughly quadruples (O(n²)); the ratio grows ~linearly in n.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
