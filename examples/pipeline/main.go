// Pipeline: watch the run states of §3.2 travel along the boundary of a
// large mergeless ring. Every L = 22 rounds new runs start at the corners
// while earlier runs are still rolling robots into the hole — the paper's
// pipelining (§4.2, Fig. 15) that makes the total time linear.
//
// The runner counts stream out of the session's typed event API: the
// Event payload borrows engine-owned scratch, so observing every round
// costs no allocations — only the lengths are kept here.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"gridgather"
)

func main() {
	cells, err := gridgather.Workload("hollow", 220)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mergeless ring with %d robots; runner count per round:\n\n", len(cells))

	history := []int{}
	sim, err := gridgather.New(cells,
		gridgather.WithObserver(gridgather.RoundEvents, func(ev gridgather.Event) {
			history = append(history, len(ev.Runners))
		}))
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run(context.Background())
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	// A sparkline of concurrent runners: the sawtooth shows batches of runs
	// starting every L rounds and dying in merges.
	const cols = 110
	step := (len(history) + cols - 1) / cols
	fmt.Print("runners ")
	maxR := 1
	for _, h := range history {
		if h > maxR {
			maxR = h
		}
	}
	marks := []rune(" ▁▂▃▄▅▆▇█")
	for i := 0; i < len(history); i += step {
		peak := 0
		for j := i; j < i+step && j < len(history); j++ {
			if history[j] > peak {
				peak = history[j]
			}
		}
		idx := peak * (len(marks) - 1) / maxR
		fmt.Print(string(marks[idx]))
	}
	fmt.Println()
	fmt.Printf("\nmax concurrent runners: %d\n", maxR)
	fmt.Printf("runs started:           %d\n", res.RunsStarted)
	fmt.Printf("rounds:                 %d (%.2f per robot)\n",
		res.Rounds, float64(res.Rounds)/float64(res.InitialRobots))
}
