// Quickstart: gather a small swarm and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridgather"
)

func main() {
	// A hollow square ring of ~100 robots: the canonical shape whose long
	// walls no local merge can shorten — the paper's run/reshapement
	// machinery does the work.
	cells, err := gridgather.Workload("hollow", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial swarm (%d robots):\n%s\n", len(cells), gridgather.Render(cells))

	res := gridgather.Gather(cells, gridgather.Options{
		CheckConnectivity: true, // validate the paper's safety property
		StrictLocality:    true, // panic if any decision looks beyond radius 20
	})
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("gathered: %v\n", res.Gathered)
	fmt.Printf("rounds:   %d   (%.2f per robot — Theorem 1 promises O(n))\n",
		res.Rounds, float64(res.Rounds)/float64(res.InitialRobots))
	fmt.Printf("merges:   %d\n", res.Merges)
	fmt.Printf("runs:     %d reshapement runs started\n", res.RunsStarted)
}
