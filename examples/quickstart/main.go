// Quickstart: create a simulation session, run it, and print what
// happened.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gridgather"
)

func main() {
	// A hollow square ring of ~100 robots: the canonical shape whose long
	// walls no local merge can shorten — the paper's run/reshapement
	// machinery does the work.
	cells, err := gridgather.Workload("hollow", 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial swarm (%d robots):\n%s\n", len(cells), gridgather.Render(cells))

	sim, err := gridgather.New(cells,
		gridgather.WithConnectivityCheck(true), // validate the paper's safety property
		gridgather.WithStrictLocality(true),    // panic if any decision looks beyond radius 20
	)
	if err != nil {
		log.Fatal(err)
	}

	// Step the first few rounds by hand — the session is incremental…
	if _, err := sim.StepN(3); err != nil {
		log.Fatal(err)
	}
	st := sim.Status()
	fmt.Printf("after %d rounds: %d robots remain\n\n", st.Round, st.Robots)

	// …then run the rest to completion (the context could cancel it).
	res := sim.Run(context.Background())
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("gathered: %v\n", res.Gathered)
	fmt.Printf("rounds:   %d   (%.2f per robot — Theorem 1 promises O(n))\n",
		res.Rounds, float64(res.Rounds)/float64(res.InitialRobots))
	fmt.Printf("merges:   %d\n", res.Merges)
	fmt.Printf("runs:     %d reshapement runs started\n", res.RunsStarted)
}
