// Fuzzgather: a randomized soak of the algorithm through the public
// session API. Every workload family is simulated at random sizes with
// full checking; each run is additionally checkpointed at a random mid-run
// round, restored, and raced against the uninterrupted session — the soak
// aborts on the first violation of the paper's guarantees (connectivity,
// locality, linear-budget termination) or of the snapshot contract (the
// restored run must finish with the identical Result).
//
//	go run ./examples/fuzzgather [-rounds 40]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridgather"
)

func main() {
	iterations := flag.Int("rounds", 40, "number of random simulations")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	families := gridgather.Workloads()
	worst := 0.0

	for i := 0; i < *iterations; i++ {
		name := families[rng.Intn(len(families))]
		n := 30 + rng.Intn(270)
		cells, err := gridgather.Workload(name, n)
		if err != nil {
			log.Fatal(err)
		}
		opts := []gridgather.Option{
			gridgather.WithConnectivityCheck(true),
			gridgather.WithStrictLocality(true),
		}

		// The uninterrupted reference run.
		sim, err := gridgather.New(cells, opts...)
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(context.Background())
		if res.Err != nil || !res.Gathered {
			log.Fatalf("FAIL %s n=%d: %+v", name, len(cells), res)
		}

		// Checkpoint a twin at a random round, restore, run to the end:
		// the snapshot contract promises the identical Result.
		twin, err := gridgather.New(cells, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := twin.StepN(1 + rng.Intn(res.Rounds)); err != nil {
			log.Fatalf("FAIL %s n=%d stepping twin: %v", name, len(cells), err)
		}
		snap, err := twin.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		restored, err := gridgather.Restore(snap)
		if err != nil {
			log.Fatal(err)
		}
		if got := restored.Run(context.Background()); got != res {
			log.Fatalf("FAIL %s n=%d: restored run %+v != uninterrupted %+v", name, len(cells), got, res)
		}

		ratio := float64(res.Rounds) / float64(res.InitialRobots)
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("ok  %-10s n=%-4d rounds=%-5d rounds/n=%.2f merges=%d runs=%d snapshot=%dB\n",
			name, res.InitialRobots, res.Rounds, ratio, res.Merges, res.RunsStarted, len(snap))
	}
	fmt.Printf("\nall %d simulations gathered and resumed bit-identically; worst rounds/n = %.2f\n",
		*iterations, worst)
}
