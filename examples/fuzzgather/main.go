// Fuzzgather: a randomized soak of the algorithm through the public API.
// Every workload family is simulated at random sizes with full checking;
// the run aborts on the first violation of the paper's guarantees
// (connectivity, locality, linear-budget termination).
//
//	go run ./examples/fuzzgather [-rounds 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"gridgather"
)

func main() {
	iterations := flag.Int("rounds", 40, "number of random simulations")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	families := gridgather.Workloads()
	worst := 0.0

	for i := 0; i < *iterations; i++ {
		name := families[rng.Intn(len(families))]
		n := 30 + rng.Intn(270)
		cells, err := gridgather.Workload(name, n)
		if err != nil {
			log.Fatal(err)
		}
		res := gridgather.Gather(cells, gridgather.Options{
			CheckConnectivity: true,
			StrictLocality:    true,
		})
		if res.Err != nil || !res.Gathered {
			log.Fatalf("FAIL %s n=%d: %+v", name, len(cells), res)
		}
		ratio := float64(res.Rounds) / float64(res.InitialRobots)
		if ratio > worst {
			worst = ratio
		}
		fmt.Printf("ok  %-10s n=%-4d rounds=%-5d rounds/n=%.2f merges=%d runs=%d\n",
			name, res.InitialRobots, res.Rounds, ratio, res.Merges, res.RunsStarted)
	}
	fmt.Printf("\nall %d simulations gathered; worst rounds/n = %.2f (linear budget holds)\n",
		*iterations, worst)
}
