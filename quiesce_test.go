package gridgather

import (
	"bytes"
	"testing"
)

// The quiescence fast path is on by default, surfaces its counters
// through Status and Metrics, and WithFullRecompute pins it off — with
// identical simulation state (the engine-level differential suite proves
// bit-identity exhaustively; this pins the public wiring). The workload
// is a solid block large enough that its interior lies beyond the view
// radius of the moving frontier — a hollow ring this small never
// quiesces, every robot sees the frontier.
func TestQuiescencePublicSurface(t *testing.T) {
	const rounds = 60
	cells := mustWorkload(t, "solid", 4096)

	quick := mustNew(t, cells, WithConnectivityCheck(true))
	full := mustNew(t, cells, WithConnectivityCheck(true), WithFullRecompute(true))
	for r := 0; r < rounds; r++ {
		if err := quick.Step(); err != nil {
			t.Fatal(err)
		}
		if err := full.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snapQ, err := quick.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapF, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapQ, snapF) {
		t.Fatal("snapshots diverged between quiescent and full-recompute sessions")
	}

	m := quick.Metrics()
	if m.QuiesceComputed == 0 {
		t.Fatal("QuiesceComputed = 0: the engine never computed anything")
	}
	if m.QuiesceSkipped == 0 {
		t.Fatal("QuiesceSkipped = 0: the fast path never engaged on a solid n=4096 block")
	}
	if r := m.QuiescentRatio; r <= 0 || r >= 1 {
		t.Fatalf("QuiescentRatio = %v, want in (0, 1)", r)
	}
	if got := quick.Status().QuiescentRatio; got != m.QuiescentRatio {
		t.Fatalf("Status ratio %v != Metrics ratio %v", got, m.QuiescentRatio)
	}
	if mf := full.Metrics(); mf.QuiesceComputed != 0 || mf.QuiesceSkipped != 0 || mf.QuiescentRatio != 0 {
		t.Fatalf("full-recompute engine reports quiescence activity: %+v", mf)
	}

	// WithFullRecompute is an execution option: a quiescent run's snapshot
	// restores into a pinned engine (and vice versa is covered by the
	// engine-level suite).
	if _, err := Restore(snapQ, WithFullRecompute(true)); err != nil {
		t.Fatalf("Restore with WithFullRecompute: %v", err)
	}
}
