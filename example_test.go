package gridgather_test

import (
	"context"
	"fmt"

	"gridgather"
)

// New creates a simulation session: an incremental, observable,
// checkpointable simulation. Step it by hand, inspect it mid-flight, then
// run the rest to completion.
func ExampleNew() {
	cells, _ := gridgather.Workload("line", 20)
	sim, _ := gridgather.New(cells)

	stepped, _ := sim.StepN(4)
	st := sim.Status()
	fmt.Println("stepped:", stepped)
	fmt.Println("round:", st.Round, "robots:", st.Robots, "gathered:", st.Gathered)

	res := sim.Run(context.Background())
	fmt.Println("rounds:", res.Rounds, "gathered:", res.Gathered)
	// Output:
	// stepped: 4
	// round: 4 robots: 12 gathered: false
	// rounds: 9 gathered: true
}

// Snapshot checkpoints a running session to bytes; Restore resumes it
// bit-identically — the continued run finishes exactly like the
// uninterrupted one.
func ExampleSimulation_Snapshot() {
	cells, _ := gridgather.Workload("hollow", 60)

	reference, _ := gridgather.New(cells)
	want := reference.Run(context.Background())

	sim, _ := gridgather.New(cells)
	sim.StepN(3) // interrupt mid-run…
	snap, _ := sim.Snapshot()
	restored, _ := gridgather.Restore(snap) // …and resume later
	got := restored.Run(context.Background())

	fmt.Println("resumed identically:", got == want)
	fmt.Println("rounds:", got.Rounds)
	// Output:
	// resumed identically: true
	// rounds: 7
}

// Subscribe delivers typed events (round, merge, run-start, gathered,
// abort). Payload slices borrow session-owned scratch — valid only inside
// the callback — which keeps observation allocation-free.
func ExampleSimulation_Subscribe() {
	cells, _ := gridgather.Workload("line", 20)
	sim, _ := gridgather.New(cells)

	mergeRounds, merged := 0, 0
	sim.Subscribe(gridgather.MergeEvents, func(ev gridgather.Event) {
		mergeRounds++
		merged += ev.RoundMerges
	})
	sim.Subscribe(gridgather.GatheredEvents, func(ev gridgather.Event) {
		fmt.Println("gathered at round", ev.Round, "with", len(ev.Robots), "robots")
	})

	res := sim.Run(context.Background())
	fmt.Println("rounds with merges:", mergeRounds)
	fmt.Println("event merges match result:", merged == res.Merges)
	// Output:
	// gathered at round 9 with 2 robots
	// rounds with merges: 9
	// event merges match result: true
}

// Run honors context cancellation between rounds without corrupting the
// session: a cancelled session steps onward.
func ExampleSimulation_Run() {
	cells, _ := gridgather.Workload("line", 20)
	sim, _ := gridgather.New(cells)

	ctx, cancel := context.WithCancel(context.Background())
	sim.Subscribe(gridgather.RoundEvents, func(ev gridgather.Event) {
		if ev.Round == 3 {
			cancel() // stop the Run loop after round 3
		}
	})
	res := sim.Run(ctx)
	fmt.Println("cancelled at round:", res.Rounds, "err:", res.Err)

	res = sim.Run(context.Background()) // resume with a fresh context
	fmt.Println("finished at round:", res.Rounds, "gathered:", res.Gathered)
	// Output:
	// cancelled at round: 3 err: context canceled
	// finished at round: 9 gathered: true
}

// A tiny swarm gathers within a linear number of rounds; the engine is
// fully deterministic, so the round count is reproducible. Gather is the
// one-call convenience over the session API.
func ExampleGather() {
	cells := []gridgather.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0},
		{X: 4, Y: 0}, {X: 5, Y: 0}, {X: 6, Y: 0}, {X: 7, Y: 0},
	}
	res := gridgather.Gather(cells, gridgather.Options{CheckConnectivity: true})
	fmt.Println("gathered:", res.Gathered)
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("robots left:", res.FinalRobots)
	// Output:
	// gathered: true
	// rounds: 3
	// robots left: 2
}

// Workload builds the named benchmark families at a requested size.
func ExampleWorkload() {
	cells, err := gridgather.Workload("line", 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(cells), "robots")
	fmt.Print(gridgather.Render(cells))
	// Output:
	// 5 robots
	// #####
}

// Workloads lists the workload families the generators provide; each can
// be built at any size with Workload.
func ExampleWorkloads() {
	for _, name := range gridgather.Workloads() {
		fmt.Println(name)
	}
	// Output:
	// line
	// solid
	// hollow
	// staircase
	// spiral
	// sierpinski
	// tree
	// blob
	// clusters
}

// Options.Workers shards each round's whole pipeline — Look+Compute, move
// and merge resolution (by chunk ownership), and the commit — across a
// goroutine pool. The engine combines worker results in deterministic cell
// order, so any worker count produces the identical simulation.
func ExampleOptions_workers() {
	cells, _ := gridgather.Workload("hollow", 60)
	serial := gridgather.Gather(cells, gridgather.Options{Workers: 1})
	parallel := gridgather.Gather(cells, gridgather.Options{Workers: 8})
	fmt.Println("same rounds:", serial.Rounds == parallel.Rounds)
	fmt.Println("same merges:", serial.Merges == parallel.Merges)
	// Output:
	// same rounds: true
	// same merges: true
}

// Options.Scheduler relaxes the time model. The paper's algorithm is proved
// for FSYNC only, so relaxed schedulers pair with the scheduler-robust
// "greedy" algorithm; the slowdown reflects the scheduler's fairness bound
// (only a subset of robots acts per round).
func ExampleOptions_scheduler() {
	cells, _ := gridgather.Workload("line", 20)
	fsyncRes := gridgather.Gather(cells, gridgather.Options{Algorithm: "greedy"})
	ssyncRes := gridgather.Gather(cells, gridgather.Options{
		Scheduler:         "ssync", // round-robin thirds of the swarm
		Algorithm:         "greedy",
		CheckConnectivity: true,
	})
	fmt.Println("fsync gathered:", fsyncRes.Gathered)
	fmt.Println("ssync gathered:", ssyncRes.Gathered)
	fmt.Println("ssync slower:", ssyncRes.Rounds > fsyncRes.Rounds)
	// Output:
	// fsync gathered: true
	// ssync gathered: true
	// ssync slower: true
}

// Connected checks the paper's connectivity notion (horizontal/vertical
// adjacency only — diagonals do not connect).
func ExampleConnected() {
	fmt.Println(gridgather.Connected([]gridgather.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}))
	fmt.Println(gridgather.Connected([]gridgather.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}))
	// Output:
	// true
	// false
}

// The OnRound hook observes every FSYNC round; here it finds the round in
// which the population first halves.
func ExampleOptions_onRound() {
	cells, _ := gridgather.Workload("line", 20)
	halvedAt := -1
	res := gridgather.Gather(cells, gridgather.Options{
		OnRound: func(ri gridgather.RoundInfo) {
			if halvedAt < 0 && len(ri.Robots) <= 10 {
				halvedAt = ri.Round
			}
		},
	})
	fmt.Println("halved at round:", halvedAt)
	fmt.Println("done at round:", res.Rounds)
	// Output:
	// halved at round: 5
	// done at round: 9
}
