package gridgather_test

import (
	"fmt"

	"gridgather"
)

// A tiny swarm gathers within a linear number of rounds; the engine is
// fully deterministic, so the round count is reproducible.
func ExampleGather() {
	cells := []gridgather.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0},
		{X: 4, Y: 0}, {X: 5, Y: 0}, {X: 6, Y: 0}, {X: 7, Y: 0},
	}
	res := gridgather.Gather(cells, gridgather.Options{CheckConnectivity: true})
	fmt.Println("gathered:", res.Gathered)
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("robots left:", res.FinalRobots)
	// Output:
	// gathered: true
	// rounds: 3
	// robots left: 2
}

// Workload builds the named benchmark families at a requested size.
func ExampleWorkload() {
	cells, err := gridgather.Workload("line", 5)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(cells), "robots")
	fmt.Print(gridgather.Render(cells))
	// Output:
	// 5 robots
	// #####
}

// Workloads lists the workload families the generators provide; each can
// be built at any size with Workload.
func ExampleWorkloads() {
	for _, name := range gridgather.Workloads() {
		fmt.Println(name)
	}
	// Output:
	// line
	// solid
	// hollow
	// staircase
	// spiral
	// sierpinski
	// tree
	// blob
	// clusters
}

// Options.Workers shards each round's whole pipeline — Look+Compute, move
// and merge resolution (by chunk ownership), and the commit — across a
// goroutine pool. The engine combines worker results in deterministic cell
// order, so any worker count produces the identical simulation.
func ExampleOptions_workers() {
	cells, _ := gridgather.Workload("hollow", 60)
	serial := gridgather.Gather(cells, gridgather.Options{Workers: 1})
	parallel := gridgather.Gather(cells, gridgather.Options{Workers: 8})
	fmt.Println("same rounds:", serial.Rounds == parallel.Rounds)
	fmt.Println("same merges:", serial.Merges == parallel.Merges)
	// Output:
	// same rounds: true
	// same merges: true
}

// Options.Scheduler relaxes the time model. The paper's algorithm is proved
// for FSYNC only, so relaxed schedulers pair with the scheduler-robust
// "greedy" algorithm; the slowdown reflects the scheduler's fairness bound
// (only a subset of robots acts per round).
func ExampleOptions_scheduler() {
	cells, _ := gridgather.Workload("line", 20)
	fsyncRes := gridgather.Gather(cells, gridgather.Options{Algorithm: "greedy"})
	ssyncRes := gridgather.Gather(cells, gridgather.Options{
		Scheduler:         "ssync", // round-robin thirds of the swarm
		Algorithm:         "greedy",
		CheckConnectivity: true,
	})
	fmt.Println("fsync gathered:", fsyncRes.Gathered)
	fmt.Println("ssync gathered:", ssyncRes.Gathered)
	fmt.Println("ssync slower:", ssyncRes.Rounds > fsyncRes.Rounds)
	// Output:
	// fsync gathered: true
	// ssync gathered: true
	// ssync slower: true
}

// Connected checks the paper's connectivity notion (horizontal/vertical
// adjacency only — diagonals do not connect).
func ExampleConnected() {
	fmt.Println(gridgather.Connected([]gridgather.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}))
	fmt.Println(gridgather.Connected([]gridgather.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}))
	// Output:
	// true
	// false
}

// The OnRound hook observes every FSYNC round; here it finds the round in
// which the population first halves.
func ExampleOptions_onRound() {
	cells, _ := gridgather.Workload("line", 20)
	halvedAt := -1
	res := gridgather.Gather(cells, gridgather.Options{
		OnRound: func(ri gridgather.RoundInfo) {
			if halvedAt < 0 && len(ri.Robots) <= 10 {
				halvedAt = ri.Round
			}
		},
	})
	fmt.Println("halved at round:", halvedAt)
	fmt.Println("done at round:", res.Rounds)
	// Output:
	// halved at round: 5
	// done at round: 9
}
