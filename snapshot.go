// Snapshot format discipline for this package: the marker below
// fingerprints every format-bearing declaration (Append*/Decode*/restore
// helpers, Snapshot, and the version constant). gatherlint recomputes the
// fingerprint on each run; if the format changed without a snapshotVersion
// bump, it reports the stale hash and the new one to paste in after bumping.
//
//gather:snapshot-format version=snapshotVersion hash=021cc4b0c60a5ecf

package gridgather

import (
	"bytes"
	"errors"
	"fmt"

	"gridgather/internal/codec"
	"gridgather/internal/core"
	"gridgather/internal/fsync"
	"gridgather/internal/scenario"
)

// Snapshot format: a four-byte magic, a version, the structural
// configuration (radius, L, scheduler spec + seed, algorithm), the
// resolved simulation budget and safety flags, the initial population, and
// the engine state (counters, dense world, scheduler cursor) as encoded by
// internal/fsync. The encoding is versioned and deterministic: equal
// session states produce equal bytes.
var snapshotMagic = []byte("GGSS")

// snapshotVersion is bumped whenever the layout changes; Restore rejects
// other versions with ErrSnapshotVersion. Version 2 added the fault spec
// to the structural header and the engine's fault section (crash marks,
// degradation latch, fault-RNG cursor) to the state.
const snapshotVersion = 2

// Typed Restore failures, matched with errors.Is.
var (
	// ErrSnapshotInvalid reports input that is not a gridgather snapshot
	// or is structurally corrupt.
	ErrSnapshotInvalid = errors.New("gridgather: invalid snapshot")
	// ErrSnapshotVersion reports a snapshot from an incompatible format
	// version.
	ErrSnapshotVersion = errors.New("gridgather: unsupported snapshot version")
	// ErrSnapshotTruncated reports a snapshot cut short.
	ErrSnapshotTruncated = errors.New("gridgather: truncated snapshot")
)

// Snapshot serializes the session's complete resumable state: cells, run
// states and their IDs, logical clocks, the scheduler cursor, all
// counters, and the structural configuration. Restore resumes it
// bit-identically: the continued run executes exactly the rounds the
// uninterrupted session would have. Snapshots may be taken at any round
// boundary — including from inside an event callback — and do not perturb
// the session. The encoding is deterministic: equal states yield equal
// bytes. An invariant-violation abort (disconnection, stuck watchdog) is
// carried across the snapshot and stays sticky after Restore; a
// round-limit abort is re-derived from the restored budget instead, so
// WithMaxRounds at Restore can grant an exhausted run more rounds.
func (s *Simulation) Snapshot() ([]byte, error) {
	b := append([]byte(nil), snapshotMagic...)
	b = codec.AppendUvarint(b, snapshotVersion)
	b = codec.AppendInt(b, s.radius)
	b = codec.AppendInt(b, s.l)
	b = codec.AppendString(b, s.scheduler)
	b = codec.AppendVarint(b, s.schedulerSeed)
	b = codec.AppendString(b, s.algorithm)
	b = codec.AppendString(b, s.faults)
	b = codec.AppendInt(b, s.maxRounds)
	b = codec.AppendInt(b, s.noMergeLimit)
	b = codec.AppendBool(b, s.checkConn)
	b = codec.AppendBool(b, s.strict)
	b = codec.AppendUvarint(b, uint64(s.initial))
	b = appendAbortState(b, s.err)
	return s.eng.AppendState(b), nil
}

// Abort-state tags. A round-limit abort is deliberately NOT carried across
// a snapshot: it is a pure budget condition that the restored session
// re-derives on its first Step against the (possibly overridden) budget —
// which is what lets Restore(..., WithMaxRounds(more)) grant an exhausted
// run more rounds. Invariant violations (disconnection, stuck watchdog,
// algorithm errors), by contrast, describe the world state itself and stay
// sticky: a restored session must not re-execute rounds the original
// refused to run.
const (
	abortNone         = 0 // healthy, gathered, or round-limit (re-derived)
	abortDisconnected = 1
	abortStuck        = 2
	abortOther        = 3
)

// restoredAbortError carries an untyped abort reason across a checkpoint:
// the message survives verbatim, so checkpoint chains do not accrete
// wrapping prefixes and re-snapshotting is a fixed point.
type restoredAbortError struct{ msg string }

func (e restoredAbortError) Error() string { return e.msg }

func appendAbortState(b []byte, err error) []byte {
	switch e := err.(type) {
	case nil, fsync.ErrRoundLimit:
		return codec.AppendUvarint(b, abortNone)
	case fsync.ErrDisconnected:
		b = codec.AppendUvarint(b, abortDisconnected)
		return codec.AppendInt(b, e.Round)
	case fsync.ErrStuck:
		b = codec.AppendUvarint(b, abortStuck)
		b = codec.AppendInt(b, e.Round)
		return codec.AppendInt(b, e.SinceMerge)
	default:
		b = codec.AppendUvarint(b, abortOther)
		return codec.AppendString(b, err.Error())
	}
}

func decodeAbortState(r *codec.Reader) (error, bool) {
	switch tag := r.Uvarint(); tag {
	case abortNone:
		return nil, true
	case abortDisconnected:
		return fsync.ErrDisconnected{Round: r.Int()}, true
	case abortStuck:
		return fsync.ErrStuck{Round: r.Int(), SinceMerge: r.Int()}, true
	case abortOther:
		return restoredAbortError{msg: r.Text()}, true
	default:
		return nil, false
	}
}

// Restore rebuilds a session from a Snapshot. The structural configuration
// (radius, L, scheduler, seed, algorithm) comes from the snapshot and
// cannot be overridden — passing a structural Option is an error. Execution
// options are free: WithWorkers, observers, WithConnectivityCheck,
// WithStrictLocality, and budget overrides (WithMaxRounds /
// WithNoMergeLimit replace the checkpointed limits, e.g. to grant an
// exhausted run more budget) may all differ from the original session
// without affecting the simulated rounds.
//
// Truncated input fails with ErrSnapshotTruncated, an unknown format
// version with ErrSnapshotVersion, and corrupt or trailing data with
// ErrSnapshotInvalid (all wrapped; match with errors.Is).
func Restore(snapshot []byte, opts ...Option) (*Simulation, error) {
	if len(snapshot) < len(snapshotMagic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotTruncated, len(snapshot))
	}
	if !bytes.Equal(snapshot[:len(snapshotMagic)], snapshotMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotInvalid)
	}
	r := codec.NewReader(snapshot[len(snapshotMagic):])
	if v := r.Uvarint(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrSnapshotVersion, v, snapshotVersion)
	}
	sim := &Simulation{
		radius:        r.Int(),
		l:             r.Int(),
		scheduler:     r.Text(),
		schedulerSeed: r.Varint(),
		algorithm:     r.Text(),
		faults:        r.Text(),
		maxRounds:     r.Int(),
		noMergeLimit:  r.Int(),
		checkConn:     r.Bool(),
		strict:        r.Bool(),
		initial:       int(r.Uvarint()),
	}
	stickyErr, okTag := decodeAbortState(r)
	if err := r.Err(); err != nil {
		return nil, snapshotErr(err)
	}
	if !okTag {
		return nil, fmt.Errorf("%w: unknown abort tag", ErrSnapshotInvalid)
	}
	sim.err = stickyErr

	var cfg settings
	if err := cfg.apply(opts); err != nil {
		return nil, err
	}
	if err := cfg.rejectStructural(); err != nil {
		return nil, err
	}
	budget := fsync.Budget{MaxRounds: sim.maxRounds, NoMergeLimit: sim.noMergeLimit}.
		WithOverrides(cfg.maxRounds, cfg.noMergeLimit)
	sim.maxRounds, sim.noMergeLimit = budget.MaxRounds, budget.NoMergeLimit
	if cfg.checkConnSet {
		sim.checkConn = cfg.checkConn
	}
	if cfg.strictSet {
		sim.strict = cfg.strict
	}
	sim.workers = cfg.workers
	sim.fullBFS = cfg.fullBFS
	sim.fullRecompute = cfg.fullRecompute
	sim.subs = cfg.subs
	sim.seedSubIDs()

	params := core.WithConstants(sim.radius, sim.l)
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotInvalid, err)
	}
	// The budget was resolved at the original construction (fairness-scaled
	// by the initial population); Resolve here only rebuilds the algorithm
	// and a fresh scheduler instance for the cursor to restore into.
	sc, err := scenario.Resolve(sim.algorithm, sim.scheduler, sim.faults, sim.schedulerSeed, params, sim.initial)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotInvalid, err)
	}
	eng, rest, err := fsync.NewRestored(sc.Algorithm, sim.engineConfig(sc), r.Rest())
	if err != nil {
		return nil, snapshotErr(err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotInvalid, len(rest))
	}
	sim.eng = eng
	return sim, nil
}

// snapshotErr wraps a decode failure in the matching public sentinel.
func snapshotErr(err error) error {
	if errors.Is(err, codec.ErrTruncated) {
		return fmt.Errorf("%w: %v", ErrSnapshotTruncated, err)
	}
	return fmt.Errorf("%w: %v", ErrSnapshotInvalid, err)
}
