package gridgather

// Session-level fault-injection tests: WithFaults threading, the typed
// crash/degradation events, the Status/Metrics/Result observability
// surface, snapshot round-trips carrying mid-run fault state, and the
// corpus proof that greedy gathers the survivors under planted crash
// plans. The engine-level differential proofs live in internal/fsync.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

func TestFaultSpecsListed(t *testing.T) {
	specs := FaultSpecs()
	if len(specs) == 0 {
		t.Fatal("FaultSpecs is empty")
	}
	for _, bad := range []string{"bogus:p=1", "crash:p=2", "crash-at:r=5"} {
		if _, err := New(mustWorkload(t, "blob", 30), WithFaults(bad)); err == nil {
			t.Errorf("New accepted fault spec %q", bad)
		}
	}
}

// A zero-probability fault plan must not perturb the simulation: the full
// Result — rounds, merges, moves, run starts — matches the fault-free run
// bit for bit, with the fault machinery (crash tracking, noise draws, the
// fault-aware gathered predicate) fully engaged.
func TestZeroProbabilityFaultsMatchCleanRun(t *testing.T) {
	for _, spec := range []string{"fsync", "ssync-rr:3"} {
		t.Run(spec, func(t *testing.T) {
			cells := mustWorkload(t, "blob", 60)
			clean := mustNew(t, cells, sessionOptions(spec, 4)...)
			want := clean.Run(context.Background())
			if want.Err != nil || !want.Gathered {
				t.Fatalf("clean run: %+v", want)
			}
			faulty := mustNew(t, cells, append(sessionOptions(spec, 4),
				WithFaults("crash:p=0+noise:p=0"))...)
			if got := faulty.Run(context.Background()); got != want {
				t.Errorf("zero-probability fault run %+v != clean run %+v", got, want)
			}
		})
	}
}

// A planted mass crash surfaces everywhere it should: typed crash events
// with per-round counts, live/crashed population splits in Status, the
// cumulative counter in Metrics, and the final tally in Result — while
// greedy still gathers the survivors.
func TestSessionCrashObservability(t *testing.T) {
	cells := mustWorkload(t, "blob", 48)
	var crashEvents, degradedEvents int
	crashSum := 0
	sim := mustNew(t, cells,
		WithAlgorithm("greedy"),
		WithConnectivityCheck(true),
		WithFaults("crash-at:r=5,k=6@3"),
		WithObserver(CrashEvents|DegradedEvents, func(ev Event) {
			switch ev.Kind {
			case EventCrash:
				crashEvents++
				crashSum += ev.RoundCrashes
				if ev.Crashes != crashSum {
					t.Errorf("event crash counter %d != summed rounds %d", ev.Crashes, crashSum)
				}
			case EventDegraded:
				degradedEvents++
			}
		}))
	res := sim.Run(context.Background())
	if res.Err != nil || !res.Gathered {
		t.Fatalf("run: %+v", res)
	}
	if res.Crashes != 6 {
		t.Errorf("Result.Crashes = %d, want 6", res.Crashes)
	}
	if crashEvents != 1 || crashSum != 6 {
		t.Errorf("crash events = %d (sum %d), want one event covering all 6", crashEvents, crashSum)
	}
	if res.Degraded && degradedEvents != 1 {
		t.Errorf("degraded run emitted %d degraded events", degradedEvents)
	}
	if !res.Degraded && degradedEvents != 0 {
		t.Errorf("non-degraded run emitted %d degraded events", degradedEvents)
	}
	st := sim.Status()
	if st.Alive+st.Crashed != st.Robots {
		t.Errorf("population split broken: alive %d + crashed %d != robots %d",
			st.Alive, st.Crashed, st.Robots)
	}
	if st.Reason != "gathered" {
		t.Errorf("Status.Reason = %q, want \"gathered\"", st.Reason)
	}
	if m := sim.Metrics(); m.Crashes != 6 {
		t.Errorf("Metrics.Crashes = %d, want 6", m.Crashes)
	}
}

// A fault-free session reports zeroed fault fields.
func TestCleanSessionFaultFieldsZero(t *testing.T) {
	sim := mustNew(t, mustWorkload(t, "hollow", 40))
	res := sim.Run(context.Background())
	st := sim.Status()
	if res.Crashes != 0 || res.Degraded || st.Crashed != 0 || st.Degraded ||
		st.Alive != st.Robots || sim.Metrics().Crashes != 0 {
		t.Errorf("fault fields leaked into a clean run: %+v / %+v", res, st)
	}
}

// Snapshots carry mid-run fault state: cut a session with live crash and
// noise probabilities mid-flight, restore, and both must stay bit-identical
// to the end. WithFaults is structural, so Restore rejects it.
func TestSnapshotRestoreWithFaults(t *testing.T) {
	const faults = "crash:p=0.004+noise:p=0.02@9"
	for _, spec := range []string{"fsync", "ssync-rand:3"} {
		t.Run(spec, func(t *testing.T) {
			cells := mustWorkload(t, "blob", 48)
			opts := append(sessionOptions(spec, 4), WithAlgorithm("greedy"),
				WithConnectivityCheck(true), WithFaults(faults))
			donor := mustNew(t, cells, opts...)
			if _, err := donor.StepN(20); err != nil {
				t.Fatal(err)
			}
			snap, err := donor.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if again, _ := donor.Snapshot(); !bytes.Equal(snap, again) {
				t.Fatal("snapshot bytes not deterministic")
			}
			if _, err := Restore(snap, WithFaults("off")); err == nil {
				t.Fatal("Restore accepted the structural WithFaults option")
			}
			restored, err := Restore(snap)
			if err != nil {
				t.Fatal(err)
			}
			compareSessions(t, donor, restored)
			for !donor.Status().Done {
				if err := donor.Step(); err != nil {
					t.Fatalf("donor step: %v", err)
				}
				if err := restored.Step(); err != nil {
					t.Fatalf("restored step: %v", err)
				}
				compareSessions(t, donor, restored)
				ds, rs := donor.Status(), restored.Status()
				if ds.Crashed != rs.Crashed || ds.Degraded != rs.Degraded ||
					ds.DegradedRound != rs.DegradedRound {
					t.Fatalf("fault state diverged after restore: %+v vs %+v", ds, rs)
				}
			}
			if dr, rr := donor.Result(), restored.Result(); dr != rr {
				t.Errorf("results diverged: %+v vs %+v", dr, rr)
			}
		})
	}
}

// The satellite corpus proof: greedy gathers the survivors under planted
// crash plans across workload families and scheduler regimes. Every spec
// is seed-pinned, so each case is a fixed, reproducible scenario.
func TestGreedyCorpusGathersSurvivors(t *testing.T) {
	workloads := []string{"blob", "tree", "clusters"}
	plans := []string{"crash-at:r=5,k=4@1", "crash:p=0.002@7"}
	for _, w := range workloads {
		for _, plan := range plans {
			for _, spec := range []string{"fsync", "ssync-rr:3"} {
				t.Run(fmt.Sprintf("%s/%s/%s", w, plan, spec), func(t *testing.T) {
					cells := mustWorkload(t, w, 40)
					// Connectivity checking on: graceful degradation (the
					// survivors' gathering condition after a fault splits
					// the swarm) piggybacks on the connectivity check.
					sim := mustNew(t, cells, append(sessionOptions(spec, 4),
						WithAlgorithm("greedy"), WithConnectivityCheck(true),
						WithFaults(plan))...)
					res := sim.Run(context.Background())
					if res.Err != nil || !res.Gathered {
						t.Fatalf("survivors not gathered: %+v (status %+v)", res, sim.Status())
					}
				})
			}
		}
	}
}
